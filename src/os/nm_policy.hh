/**
 * @file
 * (n:m) strip-marking policy (Section 4.4).
 *
 * An (n:m) allocator (0 < n <= m) uses n out of every m consecutive device
 * strips inside each 64MB block and marks the rest "no-use": those strips
 * hold no data, so a write in an adjacent strip need not verify towards
 * them. Groups restart at every 64MB block boundary (a group may span a
 * 32MB boundary but never a 64MB one). We mark the trailing m-n strips of
 * each group; any single-group marking position yields the same number of
 * adjacent-line verifications, and the paper's example marking (the 2nd
 * strip of each 3-strip group for (2:3)) is equivalent.
 *
 * Edge rule (reliability): a line in the first strip of its 64MB block
 * always verifies its top adjacent line, and one in the last strip always
 * verifies its bottom adjacent line, because the neighbouring block may
 * belong to a different allocator.
 */

#ifndef SDPCM_OS_NM_POLICY_HH
#define SDPCM_OS_NM_POLICY_HH

#include <cstdint>
#include <string>

#include "common/logging.hh"

namespace sdpcm {

/** Allocator ratio tag carried through page table / TLB / controller. */
struct NmRatio
{
    unsigned n = 1;
    unsigned m = 1;

    bool
    operator==(const NmRatio& other) const
    {
        return n == other.n && m == other.m;
    }

    bool
    isFull() const
    {
        return n == m;
    }

    std::string
    toString() const
    {
        return std::to_string(n) + ":" + std::to_string(m);
    }
};

/** Strip usage and adjacent-line verification policy for one ratio. */
class NmPolicy
{
  public:
    /**
     * @param ratio the (n:m) allocator ratio
     * @param strips_per_block strips per 64MB block (geometry-dependent)
     */
    NmPolicy(const NmRatio& ratio, std::uint64_t strips_per_block)
        : ratio_(ratio), stripsPerBlock_(strips_per_block)
    {
        SDPCM_ASSERT(ratio.n >= 1 && ratio.n <= ratio.m,
                     "invalid (n:m) ratio ", ratio.n, ":", ratio.m);
        SDPCM_ASSERT(strips_per_block > 0, "empty block");
    }

    const NmRatio& ratio() const { return ratio_; }
    std::uint64_t stripsPerBlock() const { return stripsPerBlock_; }

    /** Whether a strip may hold data under this allocator. */
    bool
    stripInUse(std::uint64_t strip) const
    {
        if (ratio_.isFull())
            return true;
        const std::uint64_t local = strip % stripsPerBlock_;
        return (local % ratio_.m) < ratio_.n;
    }

    /** Must a write in `strip` verify its top (row-1) adjacent line? */
    bool
    verifyUpper(std::uint64_t strip) const
    {
        const std::uint64_t local = strip % stripsPerBlock_;
        if (local == 0)
            return true; // block edge: always verify outwards
        return stripInUse(strip - 1);
    }

    /** Must a write in `strip` verify its bottom (row+1) adjacent line? */
    bool
    verifyLower(std::uint64_t strip) const
    {
        const std::uint64_t local = strip % stripsPerBlock_;
        if (local + 1 == stripsPerBlock_)
            return true; // block edge: always verify outwards
        return stripInUse(strip + 1);
    }

    /** Average adjacent lines verified per write, over used strips. */
    double averageVerifiedNeighbors() const;

    /** Fraction of strips usable for data. */
    double
    usableFraction() const
    {
        std::uint64_t used = 0;
        for (std::uint64_t s = 0; s < stripsPerBlock_; ++s)
            used += stripInUse(s) ? 1 : 0;
        return static_cast<double>(used) /
               static_cast<double>(stripsPerBlock_);
    }

  private:
    NmRatio ratio_;
    std::uint64_t stripsPerBlock_;
};

} // namespace sdpcm

#endif // SDPCM_OS_NM_POLICY_HH
