/**
 * @file
 * Per-process address translation with the (n:m) allocator tag.
 *
 * Section 4.4: the page table gains an allocator-tag field which is loaded
 * into the TLB on a fill and travels with every memory request to the
 * memory controller, which uses it to decide which adjacent lines of a
 * write need verification. Each core runs one process in its own virtual
 * address space (the paper's multi-programmed setup), so the MMU here
 * bundles a private page table, a small LRU TLB, and demand paging from
 * the WD-aware page allocator.
 */

#ifndef SDPCM_OS_PAGE_TABLE_HH
#define SDPCM_OS_PAGE_TABLE_HH

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "os/buddy.hh"
#include "os/nm_policy.hh"
#include "pcm/address.hh"

namespace sdpcm {

/** Result of one address translation. */
struct Translation
{
    PhysAddr paddr = 0;
    NmRatio tag;
    bool tlbHit = false;
    bool pageFault = false; //!< first touch: a frame was allocated
};

/** Small fully-associative LRU TLB. */
class Tlb
{
  public:
    explicit Tlb(unsigned entries = 64);

    /** Look up a virtual page; returns the frame on a hit. */
    std::optional<std::uint64_t> lookup(std::uint64_t vpage);

    /** Install a translation (evicts LRU if full). */
    void insert(std::uint64_t vpage, std::uint64_t frame);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    unsigned capacity_;
    std::list<std::uint64_t> lru_; //!< most recent at front
    struct Entry
    {
        std::uint64_t frame;
        std::list<std::uint64_t>::iterator lruPos;
    };
    std::unordered_map<std::uint64_t, Entry> map_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/**
 * One process's view of memory: page table + TLB + demand allocation
 * under a fixed (n:m) allocator tag (the paper assumes one allocator per
 * application for simplicity).
 */
class Mmu
{
  public:
    Mmu(PageAllocatorSystem& allocator, const NmRatio& tag,
        unsigned page_bytes, unsigned tlb_entries = 64);

    const NmRatio& tag() const { return tag_; }

    /** Translate a virtual byte address, allocating on first touch. */
    Translation translate(std::uint64_t vaddr);

    /** Release every frame the process owns (process exit). */
    void releaseAll();

    std::uint64_t pageFaults() const { return pageFaults_; }
    std::uint64_t mappedPages() const { return table_.size(); }
    const Tlb& tlb() const { return tlb_; }

  private:
    PageAllocatorSystem& allocator_;
    NmRatio tag_;
    unsigned pageBytes_;
    Tlb tlb_;
    std::unordered_map<std::uint64_t, std::uint64_t> table_;
    std::uint64_t pageFaults_ = 0;
};

} // namespace sdpcm

#endif // SDPCM_OS_PAGE_TABLE_HH
