#include "os/page_table.hh"

#include "common/logging.hh"

namespace sdpcm {

Tlb::Tlb(unsigned entries)
    : capacity_(entries)
{
    SDPCM_ASSERT(entries > 0, "TLB needs at least one entry");
}

std::optional<std::uint64_t>
Tlb::lookup(std::uint64_t vpage)
{
    auto it = map_.find(vpage);
    if (it == map_.end()) {
        misses_ += 1;
        return std::nullopt;
    }
    hits_ += 1;
    lru_.splice(lru_.begin(), lru_, it->second.lruPos);
    return it->second.frame;
}

void
Tlb::insert(std::uint64_t vpage, std::uint64_t frame)
{
    auto it = map_.find(vpage);
    if (it != map_.end()) {
        it->second.frame = frame;
        lru_.splice(lru_.begin(), lru_, it->second.lruPos);
        return;
    }
    if (map_.size() >= capacity_) {
        const std::uint64_t victim = lru_.back();
        lru_.pop_back();
        map_.erase(victim);
    }
    lru_.push_front(vpage);
    map_[vpage] = Entry{frame, lru_.begin()};
}

Mmu::Mmu(PageAllocatorSystem& allocator, const NmRatio& tag,
         unsigned page_bytes, unsigned tlb_entries)
    : allocator_(allocator),
      tag_(tag),
      pageBytes_(page_bytes),
      tlb_(tlb_entries)
{
    SDPCM_ASSERT(isPowerOfTwo(page_bytes), "page size must be 2^k");
}

Translation
Mmu::translate(std::uint64_t vaddr)
{
    Translation tr;
    tr.tag = tag_;
    const std::uint64_t vpage = vaddr / pageBytes_;
    const std::uint64_t offset = vaddr % pageBytes_;

    if (auto frame = tlb_.lookup(vpage)) {
        tr.tlbHit = true;
        tr.paddr = *frame * pageBytes_ + offset;
        return tr;
    }

    auto it = table_.find(vpage);
    std::uint64_t frame;
    if (it != table_.end()) {
        frame = it->second;
    } else {
        auto allocated = allocator_.allocatePage(tag_);
        if (!allocated) {
            SDPCM_FATAL("out of physical memory under allocator ",
                        tag_.toString());
        }
        frame = *allocated;
        table_[vpage] = frame;
        pageFaults_ += 1;
        tr.pageFault = true;
    }
    tlb_.insert(vpage, frame);
    tr.paddr = frame * pageBytes_ + offset;
    return tr;
}

void
Mmu::releaseAll()
{
    for (const auto& [vpage, frame] : table_)
        allocator_.free(tag_, FrameBlock{frame, 0});
    table_.clear();
}

} // namespace sdpcm
