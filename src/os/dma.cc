#include "os/dma.hh"

#include "common/logging.hh"

namespace sdpcm {

std::vector<std::uint64_t>
DmaController::framesForTransfer(const NmRatio& tag,
                                 std::uint64_t start_frame,
                                 std::uint64_t pages) const
{
    if (!tagSupported(tag)) {
        SDPCM_FATAL("DMA supports only (1:1) and (1:2) allocations, got ",
                    tag.toString());
    }
    const NmPolicy policy(tag, geometry_.stripsPer64MB());
    const unsigned frames_per_strip = geometry_.framesPerStrip();
    SDPCM_ASSERT(policy.stripInUse(start_frame / frames_per_strip),
                 "DMA start frame lies in a no-use strip");

    std::vector<std::uint64_t> frames;
    frames.reserve(pages);
    std::uint64_t frame = start_frame;
    const std::uint64_t total = geometry_.pageFrames();
    while (frames.size() < pages) {
        SDPCM_ASSERT(frame < total, "DMA transfer runs past memory end");
        if (policy.stripInUse(frame / frames_per_strip)) {
            frames.push_back(frame);
            frame += 1;
        } else {
            // Skip the whole no-use strip.
            frame = (frame / frames_per_strip + 1) * frames_per_strip;
        }
    }
    return frames;
}

} // namespace sdpcm
