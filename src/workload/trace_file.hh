/**
 * @file
 * Trace capture and replay.
 *
 * The paper captured PIN traces once and replayed them across schemes;
 * this pair of classes gives the same workflow: TraceFileWriter records
 * any TraceStream to a text file (one record per line: `R|W vaddr gap
 * flip_density`), and TraceFileStream replays it. Replaying a file
 * guarantees every scheme sees the *identical* reference stream even
 * across library versions.
 */

#ifndef SDPCM_WORKLOAD_TRACE_FILE_HH
#define SDPCM_WORKLOAD_TRACE_FILE_HH

#include <fstream>
#include <string>

#include "workload/trace.hh"

namespace sdpcm {

/** Write trace records to a text file. */
class TraceFileWriter
{
  public:
    explicit TraceFileWriter(const std::string& path);

    /** Append one record. */
    void write(const TraceRecord& record);

    /** Capture `count` records from a stream. @return records written */
    std::uint64_t capture(TraceStream& source, std::uint64_t count);

    std::uint64_t recordsWritten() const { return records_; }

  private:
    std::ofstream out_;
    std::uint64_t records_ = 0;
};

/** Replay a trace file as a TraceStream. */
class TraceFileStream : public TraceStream
{
  public:
    explicit TraceFileStream(const std::string& path);

    bool next(TraceRecord& record) override;

    std::uint64_t recordsRead() const { return records_; }

  private:
    std::ifstream in_;
    std::uint64_t records_ = 0;
};

} // namespace sdpcm

#endif // SDPCM_WORKLOAD_TRACE_FILE_HH
