/**
 * @file
 * Synthetic workload generators calibrated to Table 3.
 *
 * Each SPEC2006 program is modelled by a profile: main-memory RPKI/WPKI
 * (taken verbatim from Table 3), a virtual footprint, a hot-set locality
 * mix, a mean sequential run length, and a mean per-write bit-flip density
 * (the paper notes gemsFDTD "changes less bits per write"). STREAM is
 * generated structurally: the four kernels sweep their arrays, reading
 * source lines and writing destination lines.
 */

#ifndef SDPCM_WORKLOAD_GENERATORS_HH
#define SDPCM_WORKLOAD_GENERATORS_HH

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "workload/trace.hh"

namespace sdpcm {

/** Calibrated description of one benchmark's memory behaviour. */
struct WorkloadProfile
{
    std::string name;
    double rpki = 1.0;            //!< reads per 1000 instructions
    double wpki = 1.0;            //!< writes per 1000 instructions
    std::uint64_t footprintBytes = 32ULL << 20;
    double hotFraction = 0.3;     //!< accesses hitting the hot set
    double hotSetFraction = 0.1;  //!< hot set size / footprint
    double seqRunMean = 8.0;      //!< mean sequential run, in lines
    double flipDensity = 0.10;    //!< mean fraction of bits per write

    double
    apki() const
    {
        return rpki + wpki;
    }
};

/** The simulated applications of Table 3 (8 SPEC2006 + STREAM). */
const std::vector<WorkloadProfile>& table3Profiles();

/** Look up a profile by name (fatal if unknown). */
const WorkloadProfile& profileByName(const std::string& name);

/** Locality/rate-profiled generator for the SPEC-like workloads. */
class SyntheticTraceGenerator : public TraceStream
{
  public:
    SyntheticTraceGenerator(const WorkloadProfile& profile,
                            std::uint64_t seed);

    bool next(TraceRecord& record) override;

    const WorkloadProfile& profile() const { return profile_; }

  private:
    std::uint64_t pickRunStart();

    WorkloadProfile profile_;
    Rng rng_;
    double gapMean_;
    std::uint64_t footprintLines_;
    std::uint64_t hotLines_;
    // Current sequential run.
    std::uint64_t runLine_ = 0;
    std::uint64_t runRemaining_ = 0;
};

/**
 * Adversarial queue-stress generator ("qstress"): hammers a tiny hot set
 * of lines laid out as bit-line-adjacent page pairs (virtual pages v and
 * v+16, which land on the same bank in adjacent device rows under the
 * frame-interleaved mapping) with a write-heavy, almost gap-free mix.
 * Per-bank write queues stay full, so drains, coalesces, duplicate
 * entries from write cancellation, PreRead forwarding and buffer
 * refreshes all fire constantly — the maximum-race diet for the
 * integrity oracle. Not a Table 3 workload; use with `--verify-oracle`.
 */
class QueueStressGenerator : public TraceStream
{
  public:
    explicit QueueStressGenerator(std::uint64_t seed);

    bool next(TraceRecord& record) override;

  private:
    Rng rng_;
    std::uint64_t churn_ = 0; //!< sequential cold-line cursor
};

/**
 * Structural STREAM generator: copy, scale, add and triad sweep three
 * arrays; every 64B line of a source is read and of a destination written
 * once per pass (the caches filter everything else), with instruction
 * gaps matching the Table 3 rates.
 */
class StreamTraceGenerator : public TraceStream
{
  public:
    StreamTraceGenerator(std::uint64_t array_bytes, double apki,
                         std::uint64_t seed);

    bool next(TraceRecord& record) override;

  private:
    std::uint64_t arrayLines_;
    Rng rng_;
    double gapMean_;
    unsigned kernel_ = 0;     //!< 0 copy, 1 scale, 2 add, 3 triad
    std::uint64_t index_ = 0; //!< line index within the pass
    unsigned step_ = 0;       //!< position within the kernel's R/W pattern
};

} // namespace sdpcm

#endif // SDPCM_WORKLOAD_GENERATORS_HH
