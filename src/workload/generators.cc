#include "workload/generators.hh"

#include "common/logging.hh"

namespace sdpcm {

namespace {

constexpr std::uint64_t kLineBytes = 64;
constexpr std::uint64_t kMB = 1ULL << 20;

} // namespace

const std::vector<WorkloadProfile>&
table3Profiles()
{
    // RPKI/WPKI verbatim from Table 3; footprints, locality and
    // flip-density calibrated to the behaviours the paper calls out
    // (gemsFDTD changes few bits per write; mcf is pointer-chasing and
    // write-heavy; STREAM is fully sequential).
    static const std::vector<WorkloadProfile> profiles = {
        {"bwaves",   17.45,  0.47, 48 * kMB, 0.30, 0.10, 8.0,  0.10},
        {"gemsFDTD",  9.62,  6.67, 48 * kMB, 0.40, 0.10, 8.0,  0.035},
        {"lbm",      14.59,  7.29, 48 * kMB, 0.20, 0.10, 16.0, 0.12},
        {"leslie3d",  2.39,  0.04, 24 * kMB, 0.40, 0.10, 8.0,  0.10},
        {"mcf",      22.38, 20.47, 64 * kMB, 0.60, 0.05, 2.0,  0.15},
        {"wrf",       0.14,  0.02, 16 * kMB, 0.50, 0.10, 4.0,  0.10},
        {"xalan",     0.13,  0.13, 16 * kMB, 0.50, 0.10, 2.0,  0.12},
        {"zeusmp",    4.11,  3.36, 32 * kMB, 0.30, 0.10, 8.0,  0.10},
        {"stream",    2.32,  2.32, 24 * kMB, 0.00, 0.10, 64.0, 0.30},
    };
    return profiles;
}

const WorkloadProfile&
profileByName(const std::string& name)
{
    for (const auto& p : table3Profiles()) {
        if (p.name == name)
            return p;
    }
    SDPCM_FATAL("unknown workload profile: ", name);
}

SyntheticTraceGenerator::SyntheticTraceGenerator(
    const WorkloadProfile& profile, std::uint64_t seed)
    : profile_(profile),
      rng_(seed)
{
    SDPCM_ASSERT(profile.apki() > 0.0, "profile with zero access rate");
    gapMean_ = 1000.0 / profile.apki();
    footprintLines_ = profile.footprintBytes / kLineBytes;
    hotLines_ = static_cast<std::uint64_t>(
        static_cast<double>(footprintLines_) * profile.hotSetFraction);
    if (hotLines_ == 0)
        hotLines_ = 1;
}

std::uint64_t
SyntheticTraceGenerator::pickRunStart()
{
    if (profile_.hotFraction > 0.0 && rng_.chance(profile_.hotFraction))
        return rng_.below(hotLines_);
    return rng_.below(footprintLines_);
}

bool
SyntheticTraceGenerator::next(TraceRecord& record)
{
    if (runRemaining_ == 0) {
        runLine_ = pickRunStart();
        const double p = 1.0 / profile_.seqRunMean;
        runRemaining_ = 1 + rng_.geometric(p < 1.0 ? p : 1.0);
    } else {
        runLine_ = (runLine_ + 1) % footprintLines_;
    }
    runRemaining_ -= 1;

    record.vaddr = runLine_ * kLineBytes;
    record.isWrite =
        rng_.chance(profile_.wpki / profile_.apki());
    // Geometric gap with the calibrated mean.
    record.gap = static_cast<std::uint32_t>(
        rng_.geometric(1.0 / (gapMean_ + 1.0)));
    record.flipDensity = record.isWrite
        ? profile_.flipDensity * (0.5 + rng_.uniform())
        : 0.0;
    return true;
}

QueueStressGenerator::QueueStressGenerator(std::uint64_t seed)
    : rng_(seed)
{}

bool
QueueStressGenerator::next(TraceRecord& record)
{
    // 8 page pairs: pages 0..7 plus 16..23. With frames interleaved
    // across 16 banks and a near-linear first-touch allocation, page v
    // and page v+16 occupy adjacent rows of one bank, so queued writes
    // to one half are the other half's VnC adjacents — every PreRead
    // capture, forward and refresh path races against pending writes.
    constexpr std::uint64_t kPageBytes = 4096;
    constexpr std::uint64_t kPairs = 8;
    constexpr std::uint64_t kHotLinesPerPage = 4;

    // The hot set alone fits inside the write queues: every write would
    // coalesce and nothing would ever be serviced. A churn stream of
    // sequential cold writes (distinct lines, never reused soon) keeps
    // the queues at their drain watermark so the hot writes are forced
    // through the full PreRead / verify / cancel machinery while new
    // hot writes keep landing on them.
    if (rng_.chance(0.3)) {
        constexpr std::uint64_t kChurnBasePage = 64;
        constexpr std::uint64_t kChurnPages = 512;
        constexpr std::uint64_t kLinesPerPage = kPageBytes / kLineBytes;
        const std::uint64_t line = churn_ % kLinesPerPage;
        const std::uint64_t page =
            kChurnBasePage + (churn_ / kLinesPerPage) % kChurnPages;
        churn_ += 1;
        record.vaddr = page * kPageBytes + line * kLineBytes;
        record.isWrite = true;
        record.gap = 0;
        record.flipDensity = 0.15 + 0.15 * rng_.uniform();
        return true;
    }

    const std::uint64_t pair = rng_.below(kPairs);
    const std::uint64_t page = pair + (rng_.below(2) ? 16 : 0);
    const std::uint64_t line = rng_.below(kHotLinesPerPage);
    record.vaddr = page * kPageBytes + line * kLineBytes;
    record.isWrite = rng_.chance(0.7);
    // Near-zero gaps keep the queues saturated; dense flips maximise
    // RESET pulses and thus disturbance pressure.
    record.gap = static_cast<std::uint32_t>(rng_.below(3));
    record.flipDensity = record.isWrite ? 0.15 + 0.15 * rng_.uniform()
                                        : 0.0;
    return true;
}

StreamTraceGenerator::StreamTraceGenerator(std::uint64_t array_bytes,
                                           double apki, std::uint64_t seed)
    : arrayLines_(array_bytes / kLineBytes),
      rng_(seed)
{
    SDPCM_ASSERT(arrayLines_ > 0, "empty STREAM array");
    SDPCM_ASSERT(apki > 0.0, "STREAM with zero access rate");
    gapMean_ = 1000.0 / apki;
}

bool
StreamTraceGenerator::next(TraceRecord& record)
{
    // Arrays a, b, c laid out back to back in the virtual address space.
    const std::uint64_t a = 0;
    const std::uint64_t b = arrayLines_;
    const std::uint64_t c = 2 * arrayLines_;

    // Per-line access patterns (source reads then destination write):
    //   copy:  read a,        write c
    //   scale: read c,        write b
    //   add:   read a, b,     write c
    //   triad: read b, c,     write a
    static const struct
    {
        unsigned count;
        // Offsets index {a, b, c}; the last entry is the write target.
        unsigned ops[3];
    } kernels[4] = {
        {2, {0, 2, 0}},
        {2, {2, 1, 0}},
        {3, {0, 1, 2}},
        {3, {1, 2, 0}},
    };

    const auto& k = kernels[kernel_];
    const std::uint64_t bases[3] = {a, b, c};
    const std::uint64_t line = bases[k.ops[step_]] + index_;

    record.vaddr = line * kLineBytes;
    record.isWrite = (step_ + 1 == k.count);
    record.gap = static_cast<std::uint32_t>(
        rng_.geometric(1.0 / (gapMean_ + 1.0)));
    // STREAM stores freshly computed doubles; with mostly-similar
    // magnitudes the mantissa tails dominate the changed bits.
    record.flipDensity = record.isWrite ? 0.15 + 0.1 * rng_.uniform()
                                        : 0.0;

    step_ += 1;
    if (step_ == k.count) {
        step_ = 0;
        index_ += 1;
        if (index_ == arrayLines_) {
            index_ = 0;
            kernel_ = (kernel_ + 1) % 4;
        }
    }
    return true;
}

} // namespace sdpcm
