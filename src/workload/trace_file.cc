#include "workload/trace_file.hh"

#include "common/logging.hh"

namespace sdpcm {

TraceFileWriter::TraceFileWriter(const std::string& path)
    : out_(path)
{
    if (!out_)
        SDPCM_FATAL("cannot open trace file for writing: ", path);
    out_ << "# sdpcm trace v1: R|W vaddr gap flip_density\n";
}

void
TraceFileWriter::write(const TraceRecord& record)
{
    out_ << (record.isWrite ? 'W' : 'R') << ' ' << record.vaddr << ' '
         << record.gap << ' ' << record.flipDensity << '\n';
    records_ += 1;
}

std::uint64_t
TraceFileWriter::capture(TraceStream& source, std::uint64_t count)
{
    TraceRecord record;
    std::uint64_t written = 0;
    while (written < count && source.next(record)) {
        write(record);
        written += 1;
    }
    out_.flush();
    return written;
}

TraceFileStream::TraceFileStream(const std::string& path)
    : in_(path)
{
    if (!in_)
        SDPCM_FATAL("cannot open trace file for reading: ", path);
}

bool
TraceFileStream::next(TraceRecord& record)
{
    std::string token;
    while (in_ >> token) {
        if (token == "#") {
            std::string rest;
            std::getline(in_, rest);
            continue;
        }
        if (token != "R" && token != "W") {
            SDPCM_WARN("malformed trace token: ", token);
            return false;
        }
        record.isWrite = token == "W";
        if (!(in_ >> record.vaddr >> record.gap >> record.flipDensity)) {
            SDPCM_WARN("truncated trace record");
            return false;
        }
        records_ += 1;
        return true;
    }
    return false;
}

} // namespace sdpcm
