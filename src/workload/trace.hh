/**
 * @file
 * Memory-reference trace abstraction.
 *
 * The paper drives its simulator with PIN-captured traces of main-memory
 * references (post-cache, 10M per core). We substitute synthetic
 * generators calibrated to the published per-benchmark RPKI/WPKI
 * (Table 3); a trace record carries the instruction gap since the
 * previous reference so the in-order core can account compute time.
 */

#ifndef SDPCM_WORKLOAD_TRACE_HH
#define SDPCM_WORKLOAD_TRACE_HH

#include <cstdint>

namespace sdpcm {

/** One main-memory reference. */
struct TraceRecord
{
    bool isWrite = false;
    std::uint64_t vaddr = 0;   //!< virtual byte address (line aligned)
    std::uint32_t gap = 0;     //!< instructions since the last reference
    double flipDensity = 0.0;  //!< writes: fraction of line bits flipped
};

/** Pull-based reference stream. */
class TraceStream
{
  public:
    virtual ~TraceStream() = default;

    /** Produce the next record; false when the trace is exhausted. */
    virtual bool next(TraceRecord& record) = 0;
};

} // namespace sdpcm

#endif // SDPCM_WORKLOAD_TRACE_HH
